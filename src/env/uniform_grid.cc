#include "env/uniform_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/agent.h"
#include "core/resource_manager.h"

namespace bdm {

namespace {

struct alignas(64) BoundsPartial {
  Real3 lower{std::numeric_limits<real_t>::max(),
              std::numeric_limits<real_t>::max(),
              std::numeric_limits<real_t>::max()};
  Real3 upper{std::numeric_limits<real_t>::lowest(),
              std::numeric_limits<real_t>::lowest(),
              std::numeric_limits<real_t>::lowest()};
  real_t largest_diameter = 0;
};

}  // namespace

void UniformGridEnvironment::Update(const ResourceManager& rm,
                                    NumaThreadPool* pool) {
  const uint64_t total = rm.GetNumAgents();
  flat_agents_.resize(total);
  successors_.resize(total);
  if (total == 0) {
    nx_ = ny_ = nz_ = 0;
    return;
  }

  // Flatten the per-domain vectors and reduce bounding box plus largest
  // diameter in one parallel pass.
  std::vector<uint64_t> domain_offset(rm.GetNumDomains() + 1, 0);
  for (int d = 0; d < rm.GetNumDomains(); ++d) {
    domain_offset[d + 1] = domain_offset[d] + rm.GetNumAgents(d);
  }
  std::vector<BoundsPartial> partials(pool->NumThreads() + 1);
  for (int d = 0; d < rm.GetNumDomains(); ++d) {
    const auto& agents = rm.GetAgentVector(d);
    const uint64_t offset = domain_offset[d];
    pool->ParallelFor(
        0, static_cast<int64_t>(agents.size()), 4096,
        [&](int64_t lo, int64_t hi, int tid) {
          BoundsPartial& p = partials[tid + 1];
          for (int64_t i = lo; i < hi; ++i) {
            Agent* agent = agents[i];
            flat_agents_[offset + i] = agent;
            const Real3& pos = agent->GetPosition();
            for (int c = 0; c < 3; ++c) {
              p.lower[c] = std::min(p.lower[c], pos[c]);
              p.upper[c] = std::max(p.upper[c], pos[c]);
            }
            p.largest_diameter = std::max(p.largest_diameter, agent->GetDiameter());
          }
        });
  }
  BoundsPartial result;
  for (const BoundsPartial& p : partials) {
    for (int c = 0; c < 3; ++c) {
      result.lower[c] = std::min(result.lower[c], p.lower[c]);
      result.upper[c] = std::max(result.upper[c], p.upper[c]);
    }
    result.largest_diameter = std::max(result.largest_diameter, p.largest_diameter);
  }
  lower_ = result.lower;
  upper_ = result.upper;
  largest_diameter_ = result.largest_diameter;

  box_length_ = param_->fixed_box_length > 0 ? param_->fixed_box_length
                                             : largest_diameter_;
  box_length_ = std::max<real_t>(box_length_, 1e-6);

  const auto dim = [&](int c) {
    return static_cast<int64_t>(
               std::floor((upper_[c] - lower_[c]) / box_length_)) + 1;
  };
  // Sparse-space guard: a huge, sparsely populated space must not blow up
  // the boxes array (searches stay correct with a coarser grid because the
  // ring count adapts to radius / box_length).
  while (dim(0) * dim(1) * dim(2) >
         std::max<int64_t>(int64_t{1} << 21, 32 * static_cast<int64_t>(total))) {
    box_length_ *= 2;
  }
  const int64_t nx = dim(0), ny = dim(1), nz = dim(2);
  const int64_t num_boxes = nx * ny * nz;

  // Timestamp management: a fresh boxes array starts with timestamp 0 in
  // every word, so the grid's own timestamp starts at 1; on 16-bit wrap the
  // boxes are cleared once to keep "stale timestamp == empty box" sound.
  // Dimension changes (moving bounding box) reuse the existing array when
  // it is large enough: entries written under the old index mapping carry a
  // stale timestamp and are therefore invisible, so no clearing is needed
  // -- this keeps per-iteration cost O(#agents) even when agents move far
  // (the epidemiology workload).
  if (num_boxes > static_cast<int64_t>(boxes_.size())) {
    // 1.5x headroom amortizes reallocation when the bounding box grows a
    // little every iteration (random-walk workloads).
    boxes_ = std::vector<std::atomic<uint64_t>>(num_boxes + num_boxes / 2);
    timestamp_ = 1;
  } else if (++timestamp_ == 0) {
    pool->ParallelFor(0, static_cast<int64_t>(boxes_.size()), 1 << 15,
                      [&](int64_t lo, int64_t hi, int) {
      for (int64_t i = lo; i < hi; ++i) {
        boxes_[i].store(0, std::memory_order_relaxed);
      }
    });
    timestamp_ = 1;
  }
  nx_ = nx;
  ny_ = ny;
  nz_ = nz;

  // Assign all agents to boxes in parallel. The packed word makes the
  // "stale box" reset and the list push one atomic CAS.
  pool->ParallelFor(
      0, static_cast<int64_t>(total), 4096, [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; ++i) {
          const auto c = BoxCoordinates(flat_agents_[i]->GetPosition());
          std::atomic<uint64_t>& box = boxes_[FlatBoxIndex(c[0], c[1], c[2])];
          uint64_t word = box.load(std::memory_order_acquire);
          for (;;) {
            const bool fresh = Timestamp(word) == timestamp_;
            const uint16_t count = fresh ? Count(word) : 0;
            assert(count < 0xFFFF && "box overflow: >65534 agents in one box");
            successors_[i] = fresh ? Head(word) : 0xFFFFFFFFu;
            const uint64_t desired =
                Pack(timestamp_, count + 1, static_cast<uint32_t>(i));
            if (box.compare_exchange_weak(word, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
              break;
            }
          }
        }
      });
}

std::array<int64_t, 3> UniformGridEnvironment::BoxCoordinates(
    const Real3& position) const {
  std::array<int64_t, 3> c;
  const std::array<int64_t, 3> n = {nx_, ny_, nz_};
  for (int i = 0; i < 3; ++i) {
    const int64_t v =
        static_cast<int64_t>(std::floor((position[i] - lower_[i]) / box_length_));
    c[i] = std::clamp<int64_t>(v, 0, n[i] - 1);
  }
  return c;
}

void UniformGridEnvironment::Search(const Real3& position, real_t squared_radius,
                                    const Agent* exclude, NeighborFn& fn) const {
  if (flat_agents_.empty()) {
    return;
  }
  // One ring of boxes suffices for radii up to the box length (the common
  // case); larger query radii widen the search cube accordingly.
  const int64_t reach = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::sqrt(squared_radius) / box_length_)));
  // Unclamped coordinates so queries outside the grid still visit the boxes
  // their search sphere overlaps.
  std::array<int64_t, 3> c;
  for (int i = 0; i < 3; ++i) {
    c[i] = static_cast<int64_t>(std::floor((position[i] - lower_[i]) / box_length_));
  }
  const int64_t zlo = std::max<int64_t>(c[2] - reach, 0);
  const int64_t zhi = std::min<int64_t>(c[2] + reach, nz_ - 1);
  const int64_t ylo = std::max<int64_t>(c[1] - reach, 0);
  const int64_t yhi = std::min<int64_t>(c[1] + reach, ny_ - 1);
  const int64_t xlo = std::max<int64_t>(c[0] - reach, 0);
  const int64_t xhi = std::min<int64_t>(c[0] + reach, nx_ - 1);
  for (int64_t z = zlo; z <= zhi; ++z) {
    for (int64_t y = ylo; y <= yhi; ++y) {
      for (int64_t x = xlo; x <= xhi; ++x) {
        const uint64_t word =
            boxes_[FlatBoxIndex(x, y, z)].load(std::memory_order_acquire);
        if (Timestamp(word) != timestamp_) {
          continue;  // stale timestamp: box is empty this iteration
        }
        uint32_t idx = Head(word);
        for (uint16_t k = 0, count = Count(word); k < count; ++k) {
          Agent* agent = flat_agents_[idx];
          idx = successors_[idx];
          if (agent == exclude) {
            continue;
          }
          const real_t d2 = agent->GetPosition().SquaredDistance(position);
          if (d2 <= squared_radius) {
            fn(agent, d2);
          }
        }
      }
    }
  }
}

void UniformGridEnvironment::ForEachNeighbor(const Agent& query,
                                             real_t squared_radius,
                                             NeighborFn fn) const {
  Search(query.GetPosition(), squared_radius, &query, fn);
}

void UniformGridEnvironment::ForEachNeighbor(const Real3& position,
                                             real_t squared_radius,
                                             NeighborFn fn) const {
  Search(position, squared_radius, nullptr, fn);
}

size_t UniformGridEnvironment::MemoryFootprint() const {
  return boxes_.size() * sizeof(uint64_t) +
         successors_.capacity() * sizeof(uint32_t) +
         flat_agents_.capacity() * sizeof(Agent*);
}

}  // namespace bdm
