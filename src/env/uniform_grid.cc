#include "env/uniform_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "core/agent.h"
#include "core/resource_manager.h"
#include "obs/metrics.h"

namespace bdm {

namespace {

struct GridMetrics {
  int rebuilds = MetricsRegistry::Get().RegisterCounter("env.grid_rebuilds");
  int agents_indexed =
      MetricsRegistry::Get().RegisterCounter("env.grid_agents_indexed");
  int timestamp_wraps =
      MetricsRegistry::Get().RegisterCounter("env.grid_timestamp_wraps");
  int pair_visits =
      MetricsRegistry::Get().RegisterCounter("env.neighbor_pair_visits");
  int num_boxes = MetricsRegistry::Get().RegisterGauge("env.grid_num_boxes");
  int box_length = MetricsRegistry::Get().RegisterGauge("env.grid_box_length");
  int mirror_bytes =
      MetricsRegistry::Get().RegisterGauge("env.grid_mirror_bytes");
};

const GridMetrics& Metrics() {
  static const GridMetrics metrics;
  return metrics;
}

struct alignas(64) BoundsPartial {
  Real3 lower{std::numeric_limits<real_t>::max(),
              std::numeric_limits<real_t>::max(),
              std::numeric_limits<real_t>::max()};
  Real3 upper{std::numeric_limits<real_t>::lowest(),
              std::numeric_limits<real_t>::lowest(),
              std::numeric_limits<real_t>::lowest()};
  real_t largest_diameter = 0;
};

}  // namespace

void UniformGridEnvironment::Update(const ResourceManager& rm,
                                    NumaThreadPool* pool) {
  const uint64_t total = rm.GetNumAgents();
  successors_.resize(total);
  const bool store_mode = param_->soa_primary;
  if (store_mode) {
    // SoA-primary: refresh the persistent store (incremental -- a quiescent
    // population costs nothing here) and point the search views at it. The
    // grid keeps no copy of its own.
    SoaStore& store = rm.GetSoaStore();
    store.EnsureCurrent(rm, pool);
    flat_agents_ = store.agents();
    pos_x_ = store.pos_x();
    pos_y_ = store.pos_y();
    pos_z_ = store.pos_z();
    diameters_ = store.diameter();
  } else {
    own_agents_.resize(total);
    own_pos_x_.resize(total);
    own_pos_y_.resize(total);
    own_pos_z_.resize(total);
    own_diameters_.resize(total);
    flat_agents_ = own_agents_.data();
    pos_x_ = own_pos_x_.data();
    pos_y_ = own_pos_y_.data();
    pos_z_ = own_pos_z_.data();
    diameters_ = own_diameters_.data();
  }
  dense_count_ = total;
  if (total == 0) {
    nx_ = ny_ = nz_ = 0;
    return;
  }

  std::vector<BoundsPartial> partials(pool->NumThreads() + 1);
  if (store_mode) {
    // The store already holds the geometry; only the bounding box and the
    // largest diameter must be reduced, over contiguous arrays.
    const auto slabs = pool->MakeSlabPartition(0, static_cast<int64_t>(total));
    pool->RunSlabs(slabs, [&](int64_t lo, int64_t hi, int tid) {
      BoundsPartial& p = partials[tid + 1];
      for (int64_t i = lo; i < hi; ++i) {
        p.lower.x = std::min(p.lower.x, pos_x_[i]);
        p.lower.y = std::min(p.lower.y, pos_y_[i]);
        p.lower.z = std::min(p.lower.z, pos_z_[i]);
        p.upper.x = std::max(p.upper.x, pos_x_[i]);
        p.upper.y = std::max(p.upper.y, pos_y_[i]);
        p.upper.z = std::max(p.upper.z, pos_z_[i]);
        p.largest_diameter = std::max(p.largest_diameter, diameters_[i]);
      }
    });
  } else {
    // Legacy mode: flatten the per-domain vectors -- agent pointers plus the
    // SoA mirror of position and diameter -- and reduce bounding box plus
    // largest diameter in one parallel pass. Domain-major order keeps the
    // mirror NUMA-ordered like the flat agent array.
    std::vector<uint64_t> domain_offset(rm.GetNumDomains() + 1, 0);
    for (int d = 0; d < rm.GetNumDomains(); ++d) {
      domain_offset[d + 1] = domain_offset[d] + rm.GetNumAgents(d);
    }
    for (int d = 0; d < rm.GetNumDomains(); ++d) {
      const auto& agents = rm.GetAgentVector(d);
      const uint64_t offset = domain_offset[d];
      pool->ParallelFor(
          0, static_cast<int64_t>(agents.size()), 4096,
          [&](int64_t lo, int64_t hi, int tid) {
            BoundsPartial& p = partials[tid + 1];
            for (int64_t i = lo; i < hi; ++i) {
              Agent* agent = agents[i];
              own_agents_[offset + i] = agent;
              const Real3& pos = agent->GetPosition();
              const real_t diameter = agent->GetDiameter();
              own_pos_x_[offset + i] = pos.x;
              own_pos_y_[offset + i] = pos.y;
              own_pos_z_[offset + i] = pos.z;
              own_diameters_[offset + i] = diameter;
              for (int c = 0; c < 3; ++c) {
                p.lower[c] = std::min(p.lower[c], pos[c]);
                p.upper[c] = std::max(p.upper[c], pos[c]);
              }
              p.largest_diameter = std::max(p.largest_diameter, diameter);
            }
          });
    }
  }
  BoundsPartial result;
  for (const BoundsPartial& p : partials) {
    for (int c = 0; c < 3; ++c) {
      result.lower[c] = std::min(result.lower[c], p.lower[c]);
      result.upper[c] = std::max(result.upper[c], p.upper[c]);
    }
    result.largest_diameter = std::max(result.largest_diameter, p.largest_diameter);
  }
  lower_ = result.lower;
  upper_ = result.upper;
  largest_diameter_ = result.largest_diameter;

  box_length_ = param_->fixed_box_length > 0 ? param_->fixed_box_length
                                             : largest_diameter_;
  box_length_ = std::max<real_t>(box_length_, 1e-6);

  // Sparse-space guard: a huge, sparsely populated space must not blow up
  // the boxes array (searches stay correct with a coarser grid because the
  // ring count adapts to radius / box_length). Overflow-safe: each
  // dimension is bounded before it enters the product, so a huge bounding
  // box with a tiny box length cannot overflow int64 -- neither in the
  // per-dimension cast nor in the dim(0)*dim(1)*dim(2) comparison.
  const int64_t max_boxes =
      std::max<int64_t>(int64_t{1} << 21, 32 * static_cast<int64_t>(total));
  const auto grid_too_large = [&](real_t length) {
    int64_t product = 1;
    for (int c = 0; c < 3; ++c) {
      const real_t extent = (upper_[c] - lower_[c]) / length;
      if (!(extent < static_cast<real_t>(max_boxes))) {
        return true;  // this dimension alone exceeds the cap
      }
      const int64_t d = static_cast<int64_t>(std::floor(extent)) + 1;
      if (d > max_boxes / product) {
        return true;  // product would exceed the cap (or overflow)
      }
      product *= d;
    }
    return false;
  };
  while (grid_too_large(box_length_)) {
    box_length_ *= 2;
  }
  // Searches and the build multiply by the precomputed inverse instead of
  // dividing; both sides use the same expression so an agent is always
  // found in the box it was inserted into.
  inv_box_length_ = real_t{1} / box_length_;

  const auto dim = [&](int c) {
    return static_cast<int64_t>(
               std::floor((upper_[c] - lower_[c]) * inv_box_length_)) + 1;
  };
  const int64_t nx = dim(0), ny = dim(1), nz = dim(2);
  const int64_t num_boxes = nx * ny * nz;

  // Timestamp management: a fresh boxes array starts with timestamp 0 in
  // every word, so the grid's own timestamp starts at 1; on 16-bit wrap the
  // boxes are cleared once to keep "stale timestamp == empty box" sound.
  // Dimension changes (moving bounding box) reuse the existing array when
  // it is large enough: entries written under the old index mapping carry a
  // stale timestamp and are therefore invisible, so no clearing is needed
  // -- this keeps per-iteration cost O(#agents) even when agents move far
  // (the epidemiology workload).
  if (num_boxes > static_cast<int64_t>(boxes_.size())) {
    // 1.5x headroom amortizes reallocation when the bounding box grows a
    // little every iteration (random-walk workloads).
    boxes_ = std::vector<std::atomic<uint64_t>>(num_boxes + num_boxes / 2);
    timestamp_ = 1;
  } else if (++timestamp_ == 0) {
    pool->ParallelFor(0, static_cast<int64_t>(boxes_.size()), 1 << 15,
                      [&](int64_t lo, int64_t hi, int) {
      for (int64_t i = lo; i < hi; ++i) {
        boxes_[i].store(0, std::memory_order_relaxed);
      }
    });
    timestamp_ = 1;
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().Add(Metrics().timestamp_wraps, 1);
    }
  }
  nx_ = nx;
  ny_ = ny;
  nz_ = nz;
  int s = 0;
  int f = 0;
  for (int64_t dz = -1; dz <= 1; ++dz) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      for (int64_t dx = -1; dx <= 1; ++dx) {
        const int64_t offset = dx + nx_ * (dy + ny_ * dz);
        stencil_[s++] = offset;
        if (dz > 0 || (dz == 0 && (dy > 0 || (dy == 0 && dx > 0)))) {
          forward_stencil_[f++] = offset;
        }
      }
    }
  }

  // Assign all agents to boxes in parallel. The packed word makes the
  // "stale box" reset and the list push one atomic CAS. Box coordinates
  // come from the just-filled SoA mirror, not the agent.
  pool->ParallelFor(
      0, static_cast<int64_t>(total), 4096, [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; ++i) {
          const auto c =
              BoxCoordinates({pos_x_[i], pos_y_[i], pos_z_[i]});
          std::atomic<uint64_t>& box = boxes_[FlatBoxIndex(c[0], c[1], c[2])];
          uint64_t word = box.load(std::memory_order_acquire);
          for (;;) {
            const bool fresh = Timestamp(word) == timestamp_;
            const uint16_t count = fresh ? Count(word) : 0;
            assert(count < 0xFFFF && "box overflow: >65534 agents in one box");
            successors_[i] = fresh ? Head(word) : 0xFFFFFFFFu;
            const uint64_t desired =
                Pack(timestamp_, count + 1, static_cast<uint32_t>(i));
            if (box.compare_exchange_weak(word, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
              break;
            }
          }
        }
      });

  if (MetricsRegistry::Enabled()) {
    // Rebuild + SoA-mirror volume: once per Update, on the calling thread.
    auto& registry = MetricsRegistry::Get();
    const GridMetrics& ids = Metrics();
    registry.Add(ids.rebuilds, 1);
    registry.Add(ids.agents_indexed, total);
    registry.SetGauge(ids.num_boxes, static_cast<double>(num_boxes));
    registry.SetGauge(ids.box_length, static_cast<double>(box_length_));
    registry.SetGauge(ids.mirror_bytes,
                      static_cast<double>(MemoryFootprint()));
  }
}

std::array<int64_t, 3> UniformGridEnvironment::BoxCoordinates(
    const Real3& position) const {
  std::array<int64_t, 3> c;
  const std::array<int64_t, 3> n = {nx_, ny_, nz_};
  for (int i = 0; i < 3; ++i) {
    const int64_t v = static_cast<int64_t>(
        std::floor((position[i] - lower_[i]) * inv_box_length_));
    c[i] = std::clamp<int64_t>(v, 0, n[i] - 1);
  }
  return c;
}

// The plain ForEachNeighbor overloads serve callbacks that go on to read the
// neighbor Agent directly (behaviors reading velocity, positions, ...). The
// SoA mirror filters candidates without an Agent* dereference, but accepted
// candidates are confirmed against the agent's *current* position and the
// emitted distance is recomputed from it: behaviors mutate positions while
// the iteration runs, and a distance that disagrees with the state the
// callback observes breaks consumers that divide by it (e.g. flocking
// separation). When nothing moved since Update, mirror == live and the
// confirm step changes nothing.
void UniformGridEnvironment::ForEachNeighbor(const Agent& query,
                                             real_t squared_radius,
                                             NeighborFn fn) const {
  SearchImpl(query.GetPosition(), squared_radius, &query,
             [&](uint32_t idx, real_t) {
               Agent* agent = flat_agents_[idx];
               const real_t d2 =
                   agent->GetPosition().SquaredDistance(query.GetPosition());
               if (d2 <= squared_radius) {
                 fn(agent, d2);
               }
             });
}

void UniformGridEnvironment::ForEachNeighbor(const Real3& position,
                                             real_t squared_radius,
                                             NeighborFn fn) const {
  SearchImpl(position, squared_radius, nullptr,
             [&](uint32_t idx, real_t) {
               Agent* agent = flat_agents_[idx];
               const real_t d2 = agent->GetPosition().SquaredDistance(position);
               if (d2 <= squared_radius) {
                 fn(agent, d2);
               }
             });
}

// The index-aware path stays entirely on the SoA mirror: position, diameter,
// and distance are all as of the last Update, so they are consistent with
// each other, and the callback never needs the Agent object for geometry.
// This is the mechanics hot path (CalculateDisplacement).
void UniformGridEnvironment::ForEachNeighborData(const Agent& query,
                                                 real_t squared_radius,
                                                 NeighborDataFn fn) const {
  SearchImpl(query.GetPosition(), squared_radius, &query,
             [&](uint32_t idx, real_t d2) {
               fn(NeighborData{flat_agents_[idx],
                               {pos_x_[idx], pos_y_[idx], pos_z_[idx]},
                               diameters_[idx], d2});
             });
}

// Half-stencil pair traversal. Correctness argument:
//  * Same box: agents inserted earlier follow an agent in the LIFO successor
//    chain, so walking the chain from agent i emits each intra-box pair
//    exactly once, from its later-inserted endpoint.
//  * Different boxes: both boxes of an interacting pair lie in each other's
//    3x3x3 cube (radius <= box length). Exactly one of the two coordinate
//    deltas is lexicographically positive, so exactly one endpoint scans the
//    other's box through the forward half stencil.
// Each worker owns one contiguous slab of dense indices (the same
// NUMA-ordered layout the flatten pass produced), so a domain's threads
// read mostly their own domain's mirror entries.
void UniformGridEnvironment::ForEachNeighborPair(real_t squared_radius,
                                                 NumaThreadPool* pool,
                                                 NeighborPairFn fn) const {
  const int64_t total = static_cast<int64_t>(dense_count_);
  if (total == 0) {
    return;
  }
  if (squared_radius > box_length_ * box_length_ * (1 + real_t{1e-6})) {
    // One forward ring only covers radii up to the box length; wider
    // queries take the generic doubled-search traversal.
    Environment::ForEachNeighborPair(squared_radius, pool, fn);
    return;
  }
  const auto slabs = pool->MakeSlabPartition(0, total);
  pool->RunSlabs(slabs, [&](int64_t lo, int64_t hi, int tid) {
    NeighborPair pair;
    ForEachNeighborPairInSlab(
        squared_radius, lo, hi, [&](uint32_t i, uint32_t j, real_t d2) {
          pair.a_index = i;
          pair.a = flat_agents_[i];
          pair.a_position = {pos_x_[i], pos_y_[i], pos_z_[i]};
          pair.a_diameter = diameters_[i];
          pair.b_index = j;
          pair.b = flat_agents_[j];
          pair.b_position = {pos_x_[j], pos_y_[j], pos_z_[j]};
          pair.b_diameter = diameters_[j];
          pair.squared_distance = d2;
          fn(pair, tid);
        });
  });
}

void UniformGridEnvironment::CountPairVisits(uint64_t pairs_visited) const {
  if (MetricsRegistry::Enabled() && pairs_visited > 0) {
    // Self-resolving overload: in the serial/nested RunSlabs fallback the
    // reported tid is a *slab* index owned by another thread's shard; the
    // executing thread's own slot is always race-free.
    MetricsRegistry::Get().Add(Metrics().pair_visits, pairs_visited);
  }
}

// The grid's Update snapshots agent state (flat array, SoA mirror, box
// chains); the audit replays every invariant that snapshot must satisfy
// against the resource manager. Correct only right after Update, before any
// behavior moved an agent (mirror == live holds then).
void UniformGridEnvironment::AuditConsistency(
    const ResourceManager& rm, std::vector<std::string>* violations) const {
  const auto complain = [&](const std::string& what) {
    violations->push_back("uniform_grid: " + what);
  };
  const uint64_t total = rm.GetNumAgents();
  if (dense_count_ != total || successors_.size() != total) {
    complain("dense index count disagrees with the agent count " +
             std::to_string(total));
    return;  // every check below indexes the dense arrays
  }
  if (total == 0) {
    return;
  }
  for (uint64_t i = 0; i < total; ++i) {
    Agent* agent = flat_agents_[i];
    if (agent == nullptr) {
      complain("flat_agents_[" + std::to_string(i) + "] is null");
      return;
    }
    if (rm.GetAgent(agent->GetUid()) != agent) {
      std::ostringstream os;
      os << "flat_agents_[" << i << "] (uid " << agent->GetUid()
         << ") is not the resource manager's agent for that uid";
      complain(os.str());
    }
    const Real3& pos = agent->GetPosition();
    if (pos_x_[i] != pos.x || pos_y_[i] != pos.y || pos_z_[i] != pos.z ||
        diameters_[i] != agent->GetDiameter()) {
      std::ostringstream os;
      os << "SoA mirror of agent " << agent->GetUid()
         << " disagrees with the live position/diameter";
      complain(os.str());
    }
  }
  // Box chains: every box's chain must stay within bounds and visit
  // distinct agents; the chain lengths must add up to the agent count; and
  // every agent must be reachable in the box its mirrored position maps to.
  std::vector<uint8_t> seen(total, 0);
  uint64_t chained = 0;
  for (int64_t flat = 0; flat < GetNumBoxes(); ++flat) {
    const uint64_t word = boxes_[flat].load(std::memory_order_acquire);
    if (Timestamp(word) != timestamp_) {
      continue;
    }
    uint32_t idx = Head(word);
    for (uint32_t k = 0, count = Count(word); k < count; ++k) {
      if (idx >= total) {
        complain("box " + std::to_string(flat) +
                 " chain leaves the flat index range");
        return;
      }
      if (seen[idx] != 0) {
        complain("flat index " + std::to_string(idx) +
                 " appears in more than one box chain position");
        return;
      }
      seen[idx] = 1;
      ++chained;
      const auto c = BoxCoordinates({pos_x_[idx], pos_y_[idx], pos_z_[idx]});
      if (FlatBoxIndex(c[0], c[1], c[2]) != flat) {
        std::ostringstream os;
        os << "agent " << flat_agents_[idx]->GetUid() << " is chained in box "
           << flat << " but its mirrored position maps to box "
           << FlatBoxIndex(c[0], c[1], c[2]);
        complain(os.str());
      }
      idx = successors_[idx];
    }
  }
  if (chained != total) {
    complain("box chains cover " + std::to_string(chained) + " of " +
             std::to_string(total) + " agents");
  }
}

size_t UniformGridEnvironment::MemoryFootprint() const {
  // Grid-owned bytes only. In SoA-primary mode the attribute arrays belong
  // to the shared SoaStore (reported by the soa/mirror_bytes gauge), so the
  // legacy mirror vectors below stay at capacity zero.
  return boxes_.size() * sizeof(uint64_t) +
         successors_.capacity() * sizeof(uint32_t) +
         own_agents_.capacity() * sizeof(Agent*) +
         (own_pos_x_.capacity() + own_pos_y_.capacity() +
          own_pos_z_.capacity() + own_diameters_.capacity()) * sizeof(real_t);
}

}  // namespace bdm
