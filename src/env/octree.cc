#include "env/octree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "core/agent.h"
#include "core/resource_manager.h"

namespace bdm {

void OctreeEnvironment::Update(const ResourceManager& rm, NumaThreadPool* pool) {
  (void)pool;  // serial build, like the UniBN reference implementation
  const uint64_t total = rm.GetNumAgents();
  points_.clear();
  agents_.clear();
  nodes_.clear();
  points_.reserve(total);
  agents_.reserve(total);
  root_ = -1;
  lower_ = Real3{std::numeric_limits<real_t>::max(),
                 std::numeric_limits<real_t>::max(),
                 std::numeric_limits<real_t>::max()};
  upper_ = Real3{std::numeric_limits<real_t>::lowest(),
                 std::numeric_limits<real_t>::lowest(),
                 std::numeric_limits<real_t>::lowest()};
  largest_diameter_ = 0;
  rm.ForEachAgent([&](Agent* agent, AgentHandle) {
    const Real3& pos = agent->GetPosition();
    points_.push_back(pos);
    agents_.push_back(agent);
    for (int c = 0; c < 3; ++c) {
      lower_[c] = std::min(lower_[c], pos[c]);
      upper_[c] = std::max(upper_[c], pos[c]);
    }
    largest_diameter_ = std::max(largest_diameter_, agent->GetDiameter());
  });
  if (total == 0) {
    return;
  }
  const Real3 center = (lower_ + upper_) * real_t{0.5};
  real_t extent = 0;
  for (int c = 0; c < 3; ++c) {
    extent = std::max(extent, (upper_[c] - lower_[c]) * real_t{0.5});
  }
  extent = std::max<real_t>(extent * real_t{1.001}, 1e-6);  // strict containment
  root_ = Build(0, static_cast<int32_t>(total), center, extent);
}

int32_t OctreeEnvironment::Build(int32_t begin, int32_t end, const Real3& center,
                                 real_t extent) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back({});
  nodes_[id].center = center;
  nodes_[id].extent = extent;
  nodes_[id].begin = begin;
  nodes_[id].end = end;
  if (end - begin <= param_->octree_bucket_size || extent < 1e-6) {
    return id;
  }
  // Bucket the range into the eight octants (stable counting sort).
  auto octant = [&](const Real3& p) {
    return (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0) |
           (p.z >= center.z ? 4 : 0);
  };
  std::array<int32_t, 9> bucket_begin{};
  for (int32_t i = begin; i < end; ++i) {
    ++bucket_begin[octant(points_[i]) + 1];
  }
  for (int o = 0; o < 8; ++o) {
    bucket_begin[o + 1] += bucket_begin[o];
  }
  std::vector<Real3> tmp_points(points_.begin() + begin, points_.begin() + end);
  std::vector<Agent*> tmp_agents(agents_.begin() + begin, agents_.begin() + end);
  std::array<int32_t, 8> cursor;
  std::copy_n(bucket_begin.begin(), 8, cursor.begin());
  for (int32_t i = 0; i < end - begin; ++i) {
    const int o = octant(tmp_points[i]);
    points_[begin + cursor[o]] = tmp_points[i];
    agents_[begin + cursor[o]] = tmp_agents[i];
    ++cursor[o];
  }
  nodes_[id].is_leaf = false;
  const real_t child_extent = extent * real_t{0.5};
  for (int o = 0; o < 8; ++o) {
    const int32_t lo = begin + bucket_begin[o];
    const int32_t hi = begin + bucket_begin[o + 1];
    if (lo == hi) {
      continue;
    }
    const Real3 child_center = {
        center.x + ((o & 1) ? child_extent : -child_extent),
        center.y + ((o & 2) ? child_extent : -child_extent),
        center.z + ((o & 4) ? child_extent : -child_extent)};
    const int32_t child = Build(lo, hi, child_center, child_extent);
    nodes_[id].children[o] = child;
  }
  return id;
}

void OctreeEnvironment::ReportAll(const Node& node, const Real3& position,
                                  const Agent* exclude, NeighborFn& fn) const {
  for (int32_t i = node.begin; i < node.end; ++i) {
    Agent* agent = agents_[i];
    if (agent != exclude) {
      fn(agent, points_[i].SquaredDistance(position));
    }
  }
}

void OctreeEnvironment::Search(const Real3& position, real_t squared_radius,
                               const Agent* exclude, NeighborFn& fn) const {
  if (root_ < 0) {
    return;
  }
  const real_t radius = std::sqrt(squared_radius);
  // Explicit stack; depth is bounded by the minimum-extent cutoff.
  std::vector<int32_t> stack;
  stack.reserve(64);
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    // Sphere/cube overlap tests (Behley et al., Sec. III-B).
    Real3 delta = position - node.center;
    for (int c = 0; c < 3; ++c) {
      delta[c] = std::fabs(delta[c]);
    }
    // Contains: cube entirely inside the sphere?
    const Real3 corner = {delta.x + node.extent, delta.y + node.extent,
                          delta.z + node.extent};
    if (corner.SquaredNorm() <= squared_radius) {
      ReportAll(node, position, exclude, fn);
      continue;
    }
    // Overlaps: sphere intersects the cube?
    const real_t max_dist = radius + node.extent;
    if (delta.x > max_dist || delta.y > max_dist || delta.z > max_dist) {
      continue;  // completely outside
    }
    Real3 clamped = delta;
    for (int c = 0; c < 3; ++c) {
      clamped[c] = std::max<real_t>(delta[c] - node.extent, 0);
    }
    if (clamped.SquaredNorm() > squared_radius) {
      continue;
    }
    if (node.is_leaf) {
      for (int32_t i = node.begin; i < node.end; ++i) {
        Agent* agent = agents_[i];
        if (agent == exclude) {
          continue;
        }
        const real_t d2 = points_[i].SquaredDistance(position);
        if (d2 <= squared_radius) {
          fn(agent, d2);
        }
      }
      continue;
    }
    for (int o = 0; o < 8; ++o) {
      if (node.children[o] >= 0) {
        stack.push_back(node.children[o]);
      }
    }
  }
}

void OctreeEnvironment::ForEachNeighbor(const Agent& query, real_t squared_radius,
                                        NeighborFn fn) const {
  Search(query.GetPosition(), squared_radius, &query, fn);
}

void OctreeEnvironment::ForEachNeighbor(const Real3& position,
                                        real_t squared_radius,
                                        NeighborFn fn) const {
  Search(position, squared_radius, nullptr, fn);
}

size_t OctreeEnvironment::MemoryFootprint() const {
  // Complete over the persistent index arrays (points, agents, nodes); the
  // counting-sort scratch in Build is freed before Update returns.
  return points_.capacity() * sizeof(Real3) +
         agents_.capacity() * sizeof(Agent*) + nodes_.capacity() * sizeof(Node);
}

}  // namespace bdm
