// Umbrella header: the public API of the bdm-engine library.
//
// Fine-grained headers remain available for compile-time-sensitive users;
// examples and downstream applications can simply #include "bdm.h".
#ifndef BDM_BDM_H_
#define BDM_BDM_H_

#include "continuum/diffusion_grid.h"
#include "core/agent.h"
#include "core/agent_pointer.h"
#include "core/behavior.h"
#include "core/cell.h"
#include "core/execution_context.h"
#include "core/load_balance_op.h"
#include "core/operation.h"
#include "core/param.h"
#include "core/resource_manager.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "core/timing.h"
#include "env/environment.h"
#include "env/kd_tree.h"
#include "env/octree.h"
#include "env/uniform_grid.h"
#include "io/checkpoint.h"
#include "io/exporter.h"
#include "io/time_series.h"
#include "math/random.h"
#include "math/real3.h"
#include "models/common_behaviors.h"
#include "models/registry.h"
#include "neuro/growth_behaviors.h"
#include "neuro/neurite_element.h"
#include "neuro/neuron_soma.h"
#include "physics/interaction_force.h"

#endif  // BDM_BDM_H_
