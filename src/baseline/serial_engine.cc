#include "baseline/serial_engine.h"

#include <cmath>
#include <numbers>

namespace bdm::baseline {

SerialEngine::SerialEngine(const Config& config)
    : config_(config), random_(config.seed) {
  agents_.reserve(config_.num_agents);
  for (uint64_t i = 0; i < config_.num_agents; ++i) {
    auto agent = std::make_unique<BaselineAgent>();
    agent->position = random_.UniformPoint(0, config_.space);
    agent->diameter = config_.initial_diameter;
    if (config_.model == ModelKind::kEpidemiology) {
      agent->diameter = 5;
      agent->type = random_.Uniform() < 0.01 ? 1 : 0;  // 1% initially infected
    }
    agents_.push_back(std::move(agent));
  }
  box_length_ = config_.model == ModelKind::kEpidemiology
                    ? config_.infection_radius
                    : config_.division_diameter;
}

int64_t SerialEngine::BoxKey(const Real3& position) const {
  const auto bx = static_cast<int64_t>(std::floor(position.x / box_length_));
  const auto by = static_cast<int64_t>(std::floor(position.y / box_length_));
  const auto bz = static_cast<int64_t>(std::floor(position.z / box_length_));
  return bx * 73856093 ^ by * 19349663 ^ bz * 83492791;
}

void SerialEngine::RebuildIndex() {
  index_.clear();  // rebuilt from scratch every iteration
  for (const auto& agent : agents_) {
    index_[BoxKey(agent->position)].push_back(agent.get());
  }
}

std::vector<BaselineAgent*> SerialEngine::Neighbors(
    const Real3& position, real_t radius, const BaselineAgent* exclude) const {
  std::vector<BaselineAgent*> result;  // fresh allocation per query
  const real_t r2 = radius * radius;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const Real3 probe = {position.x + dx * box_length_,
                             position.y + dy * box_length_,
                             position.z + dz * box_length_};
        auto it = index_.find(BoxKey(probe));
        if (it == index_.end()) {
          continue;
        }
        for (BaselineAgent* candidate : it->second) {
          if (candidate != exclude &&
              candidate->position.SquaredDistance(position) <= r2) {
            result.push_back(candidate);
          }
        }
      }
    }
  }
  return result;
}

void SerialEngine::Step() {
  RebuildIndex();
  std::vector<std::unique_ptr<BaselineAgent>> born;
  for (auto& agent : agents_) {
    if (config_.model == ModelKind::kProliferation) {
      if (agent->diameter >= config_.division_diameter) {
        // Division: halve the volume, spawn a displaced daughter.
        auto daughter = std::make_unique<BaselineAgent>(*agent);
        const Real3 axis = random_.UnitVector();
        const real_t offset = agent->diameter * real_t{0.25};
        daughter->position = agent->position + axis * offset;
        agent->position = agent->position - axis * offset;
        const real_t pi = std::numbers::pi_v<real_t>;
        const real_t volume =
            pi / 6 * agent->diameter * agent->diameter * agent->diameter;
        agent->diameter = std::cbrt(volume / 2 * 6 / pi);
        daughter->diameter = agent->diameter;
        born.push_back(std::move(daughter));
      } else {
        const real_t pi = std::numbers::pi_v<real_t>;
        const real_t volume =
            pi / 6 * agent->diameter * agent->diameter * agent->diameter +
            config_.volume_growth_rate * config_.dt;
        agent->diameter = std::cbrt(volume * 6 / pi);
      }
      // Simple repulsion against overlapping neighbors.
      auto neighbors =
          Neighbors(agent->position, agent->diameter, agent.get());
      Real3 force{};
      for (BaselineAgent* nb : neighbors) {
        const Real3 comp = agent->position - nb->position;
        const real_t d = comp.Norm();
        const real_t delta = (agent->diameter + nb->diameter) / 2 - d;
        if (delta > 0 && d > kEpsilon) {
          force += comp * (2 * delta / d);
        }
      }
      agent->position += force * config_.dt;
    } else {
      // Epidemiology: random walk plus SIR transition.
      agent->position += random_.UnitVector() * config_.step_length;
      if (agent->type == 1) {
        if (++agent->timer >= config_.recovery_time) {
          agent->type = 2;
        }
      } else if (agent->type == 0) {
        auto neighbors = Neighbors(agent->position, config_.infection_radius,
                                   agent.get());
        bool exposed = false;
        for (BaselineAgent* nb : neighbors) {
          exposed |= nb->type == 1;
        }
        if (exposed && random_.Bool(config_.infection_probability)) {
          agent->type = 1;
        }
      }
    }
  }
  for (auto& agent : born) {
    agents_.push_back(std::move(agent));
  }
}

void SerialEngine::Simulate(uint64_t iterations) {
  for (uint64_t i = 0; i < iterations; ++i) {
    Step();
  }
}

size_t SerialEngine::IndexMemoryFootprint() const {
  size_t bytes = index_.size() *
                 (sizeof(int64_t) + sizeof(std::vector<BaselineAgent*>) + 32);
  for (const auto& [key, box] : index_) {
    bytes += box.capacity() * sizeof(BaselineAgent*);
  }
  return bytes;
}

}  // namespace bdm::baseline
