// Baseline serial ABM engine -- the Cortex3D / NetLogo stand-in.
//
// The paper's Figure 8 compares BioDynaMo against Cortex3D (Java) and
// NetLogo; neither runs in this offline environment, so the comparison
// series comes from this deliberately conventional engine, which has the
// two structural properties the paper blames for those tools' performance:
//   * strictly single-threaded execution, and
//   * an allocation-churning neighbor index (a hash-map grid of per-box
//     std::vectors rebuilt from scratch every iteration) over individually
//     heap-allocated agent objects, giving the poor locality of a
//     JVM-object-graph design.
// It implements the same model dynamics (growth/division, random walk +
// SIR infection) so per-iteration workloads are comparable.
#ifndef BDM_BASELINE_SERIAL_ENGINE_H_
#define BDM_BASELINE_SERIAL_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "math/random.h"
#include "math/real3.h"

namespace bdm::baseline {

struct BaselineAgent {
  Real3 position;
  real_t diameter = 10;
  int type = 0;       // model-specific state (e.g. SIR)
  int timer = 0;
  bool alive = true;
};

class SerialEngine {
 public:
  enum class ModelKind { kProliferation, kEpidemiology };

  struct Config {
    ModelKind model = ModelKind::kProliferation;
    uint64_t num_agents = 1000;
    real_t space = 400;
    // proliferation
    real_t volume_growth_rate = 4000;
    real_t division_diameter = 16;
    real_t initial_diameter = 8;
    // epidemiology
    real_t step_length = 15;
    real_t infection_radius = 10;
    real_t infection_probability = 0.25;
    int recovery_time = 50;
    real_t dt = 0.01;
    uint64_t seed = 4357;
  };

  explicit SerialEngine(const Config& config);

  void Step();
  void Simulate(uint64_t iterations);

  uint64_t NumAgents() const { return agents_.size(); }
  const std::vector<std::unique_ptr<BaselineAgent>>& agents() const {
    return agents_;
  }
  /// Bytes held by the neighbor index after the last step (for the memory
  /// comparison in Figure 8).
  size_t IndexMemoryFootprint() const;

 private:
  void RebuildIndex();
  /// Collects neighbor indices within `radius` of `position` into a freshly
  /// allocated vector (deliberate allocation churn, see header comment).
  std::vector<BaselineAgent*> Neighbors(const Real3& position, real_t radius,
                                        const BaselineAgent* exclude) const;
  int64_t BoxKey(const Real3& position) const;

  Config config_;
  Random random_;
  std::vector<std::unique_ptr<BaselineAgent>> agents_;
  real_t box_length_ = 20;
  std::unordered_map<int64_t, std::vector<BaselineAgent*>> index_;
};

}  // namespace bdm::baseline

#endif  // BDM_BASELINE_SERIAL_ENGINE_H_
