// Neuroscience model (paper Table 1, column 4).
//
// Characteristics: creates agents during the simulation (growing neurites),
// agents modify neighbors (tree mechanics), load imbalance (activity is
// concentrated at growth fronts), uses diffusion (a guidance substance
// secreted at the tips), and has static regions -- the completed parts of
// each dendritic tree never move again, which is what the static-agent
// detection of Section 5 exploits (9.22x speedup in Figure 8).
#ifndef BDM_MODELS_NEUROSCIENCE_H_
#define BDM_MODELS_NEUROSCIENCE_H_

#include <cstdint>

#include "math/real.h"
#include "neuro/growth_behaviors.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::neuroscience {

struct Config {
  uint64_t num_neurons = 64;  // somata on a 2D sheet; dendrites grow upward
  real_t spacing = 30;
  real_t soma_diameter = 12;
  int neurites_per_soma = 2;
  neuro::GrowthCone::Config growth;
  bool with_substance = true;
  int substance_resolution = 16;
};

void Build(Simulation* sim, const Config& config = {});

/// Counts of {somata, neurite elements, terminal (growing) elements}.
struct TreeStats {
  uint64_t somata = 0;
  uint64_t elements = 0;
  uint64_t terminals = 0;
};
TreeStats ComputeTreeStats(Simulation* sim);

}  // namespace bdm::models::neuroscience

#endif  // BDM_MODELS_NEUROSCIENCE_H_
