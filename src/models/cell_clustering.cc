#include "models/cell_clustering.h"

#include <memory>

#include "continuum/diffusion_grid.h"
#include "core/cell.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "env/environment.h"
#include "models/common_behaviors.h"

namespace bdm::models::clustering {

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();

  const Real3 lower = {0, 0, 0};
  const Real3 upper = {config.space, config.space, config.space};
  DiffusionGrid* substances[2];
  substances[0] = sim->AddDiffusionGrid(
      std::make_unique<DiffusionGrid>("substance_0", config.diffusion_coefficient,
                                      config.decay, config.substance_resolution),
      lower, upper);
  substances[1] = sim->AddDiffusionGrid(
      std::make_unique<DiffusionGrid>("substance_1", config.diffusion_coefficient,
                                      config.decay, config.substance_resolution),
      lower, upper);

  for (uint64_t i = 0; i < config.num_cells; ++i) {
    const int type = static_cast<int>(i % 2);
    auto* cell = new Cell(random->UniformPoint(0, config.space), config.diameter);
    cell->SetCellType(type);
    cell->AddBehavior(new Secretion(substances[type], config.secretion_rate));
    cell->AddBehavior(new Chemotaxis(substances[type], config.chemotaxis_speed));
    rm->AddAgent(cell);
  }
}

real_t SameTypeNeighborFraction(Simulation* sim, real_t radius) {
  auto* rm = sim->GetResourceManager();
  auto* env = sim->GetEnvironment();
  env->Update(*rm, sim->GetThreadPool());
  double same = 0;
  double total = 0;
  rm->ForEachAgent([&](Agent* agent, AgentHandle) {
    auto* cell = static_cast<Cell*>(agent);
    env->ForEachNeighbor(*agent, radius * radius, [&](Agent* neighbor, real_t) {
      total += 1;
      if (static_cast<Cell*>(neighbor)->GetCellType() == cell->GetCellType()) {
        same += 1;
      }
    });
  });
  return total > 0 ? static_cast<real_t>(same / total) : real_t{0};
}

}  // namespace bdm::models::clustering
