#include "models/flocking.h"

#include <cmath>

#include "core/execution_context.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "env/environment.h"
#include "io/binary.h"
#include "io/checkpoint.h"
#include "models/common_behaviors.h"

namespace bdm::models::flocking {

void Boid::WriteState(std::ostream& out) const {
  Cell::WriteState(out);
  io::WriteReal3(out, velocity_);
}

void Boid::ReadState(std::istream& in) {
  Cell::ReadState(in);
  velocity_ = io::ReadReal3(in);
}

namespace {

class FlockingBehavior : public Behavior {
 public:
  FlockingBehavior() = default;
  explicit FlockingBehavior(const Config& config) : config_(config) {}

  void Run(Agent* agent, ExecutionContext* ctx) override {
    (void)ctx;
    auto* boid = static_cast<Boid*>(agent);
    auto* env = Simulation::GetActive()->GetEnvironment();

    Real3 separation{};
    Real3 alignment{};
    Real3 cohesion{};
    int neighbors = 0;
    const real_t r2 = config_.perception_radius * config_.perception_radius;
    const real_t sep2 = config_.separation_radius * config_.separation_radius;
    env->ForEachNeighbor(*agent, r2, [&](Agent* other, real_t d2) {
      auto* other_boid = static_cast<Boid*>(other);
      ++neighbors;
      alignment += other_boid->GetVelocity();
      cohesion += other->GetPosition();
      if (d2 < sep2 && d2 > kEpsilon) {
        // Push away, weighted by inverse distance.
        separation += (agent->GetPosition() - other->GetPosition()) /
                      std::sqrt(d2);
      }
    });

    Real3 velocity = boid->GetVelocity();
    if (neighbors > 0) {
      const Real3 mean_velocity = alignment / static_cast<real_t>(neighbors);
      const Real3 center = cohesion / static_cast<real_t>(neighbors);
      velocity += separation * config_.separation_weight;
      velocity += (mean_velocity - velocity) * config_.alignment_weight;
      velocity += (center - agent->GetPosition()) * config_.cohesion_weight;
    }
    // Clamp speed.
    const real_t speed = velocity.Norm();
    if (speed > config_.max_speed) {
      velocity *= config_.max_speed / speed;
    } else if (speed < kEpsilon) {
      velocity = {config_.max_speed, 0, 0};
    }
    boid->SetVelocity(velocity);
    boid->SetPosition(boid->GetPosition() + velocity);
  }

  Behavior* NewCopy() const override { return new FlockingBehavior(*this); }

  void WriteState(std::ostream& out) const override {
    io::WriteScalar(out, config_);
  }
  void ReadState(std::istream& in) override {
    config_ = io::ReadScalar<Config>(in);
  }

 private:
  Config config_;
};

BDM_REGISTER_AGENT(Boid);
BDM_REGISTER_BEHAVIOR(FlockingBehavior);

}  // namespace

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();
  for (uint64_t i = 0; i < config.num_boids; ++i) {
    auto* boid = new Boid(random->UniformPoint(0, config.space), config.diameter);
    boid->SetVelocity(random->UnitVector() * (config.max_speed / 2));
    boid->AddBehavior(new FlockingBehavior(config));
    boid->AddBehavior(new ReflectiveBounds(0, config.space));
    rm->AddAgent(boid);
  }
}

real_t Polarization(Simulation* sim) {
  Real3 sum{};
  uint64_t count = 0;
  sim->GetResourceManager()->ForEachAgent([&](Agent* agent, AgentHandle) {
    auto* boid = dynamic_cast<Boid*>(agent);
    if (boid != nullptr && boid->GetVelocity().SquaredNorm() > kEpsilon) {
      sum += boid->GetVelocity().Normalized();
      ++count;
    }
  });
  return count > 0 ? sum.Norm() / static_cast<real_t>(count) : real_t{0};
}

}  // namespace bdm::models::flocking
