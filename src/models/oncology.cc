#include "models/oncology.h"

#include <cmath>

#include "core/cell.h"
#include "io/binary.h"
#include "io/checkpoint.h"
#include "core/execution_context.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "env/environment.h"
#include "models/common_behaviors.h"

namespace bdm::models::oncology {

namespace {

class TumorCellBehavior : public Behavior {
 public:
  TumorCellBehavior() = default;
  explicit TumorCellBehavior(const Config& config) : config_(config) {}

  void Run(Agent* agent, ExecutionContext* ctx) override {
    auto* cell = static_cast<Cell*>(agent);
    Random* random = ctx->random();

    // Random micro-motion.
    cell->SetPosition(cell->GetPosition() +
                      random->UnitVector() * config_.micro_motion_step);

    // Hypoxia: crowded cells die with some probability and are removed.
    auto* env = Simulation::GetActive()->GetEnvironment();
    int neighbors = 0;
    env->ForEachNeighbor(*agent, config_.crowding_radius * config_.crowding_radius,
                         [&](Agent*, real_t) { ++neighbors; });
    if (neighbors > config_.crowding_threshold) {
      if (random->Bool(config_.death_probability)) {
        ctx->RemoveAgent(cell->GetUid());
        return;
      }
      return;  // hypoxic cells are quiescent: no growth
    }

    // Rim cells grow and divide.
    if (cell->GetDiameter() >= config_.division_diameter) {
      cell->Divide(ctx, random->UnitVector());
    } else {
      cell->ChangeVolume(config_.volume_growth_rate *
                         Simulation::GetActive()->GetParam().dt);
    }
  }

  Behavior* NewCopy() const override { return new TumorCellBehavior(*this); }

  void WriteState(std::ostream& out) const override {
    io::WriteScalar(out, config_);  // trivially copyable aggregate
  }
  void ReadState(std::istream& in) override {
    config_ = io::ReadScalar<Config>(in);
  }

 private:
  Config config_;
};

BDM_REGISTER_BEHAVIOR(TumorCellBehavior);

}  // namespace

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();
  for (uint64_t i = 0; i < config.num_cells; ++i) {
    // Uniform sample inside the spheroid via rejection on the unit ball.
    Real3 p;
    do {
      p = random->UniformPoint(-1, 1);
    } while (p.SquaredNorm() > 1);
    auto* cell = new Cell(p * config.spheroid_radius, config.diameter);
    cell->AddBehavior(new TumorCellBehavior(config));
    rm->AddAgent(cell);
  }
}

}  // namespace bdm::models::oncology
