#include "models/epidemiology.h"

#include <algorithm>

#include "core/cell.h"
#include "io/binary.h"
#include "io/checkpoint.h"
#include "core/execution_context.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "env/environment.h"
#include "models/common_behaviors.h"

namespace bdm::models::epidemiology {

namespace {

/// SIR state machine; reads neighbor states through the environment index.
class SirBehavior : public Behavior {
 public:
  SirBehavior() = default;
  explicit SirBehavior(const Config& config)
      : infection_radius_(config.infection_radius),
        infection_probability_(config.infection_probability),
        recovery_time_(config.recovery_time) {}

  void Run(Agent* agent, ExecutionContext* ctx) override {
    auto* person = static_cast<Cell*>(agent);
    switch (person->GetCellType()) {
      case kInfected:
        if (++infected_for_ >= recovery_time_) {
          person->SetCellType(kRecovered);
        }
        break;
      case kSusceptible: {
        auto* env = Simulation::GetActive()->GetEnvironment();
        bool exposed = false;
        env->ForEachNeighbor(*agent, infection_radius_ * infection_radius_,
                             [&](Agent* neighbor, real_t) {
                               exposed |= static_cast<Cell*>(neighbor)
                                              ->GetCellType() == kInfected;
                             });
        if (exposed && ctx->random()->Bool(infection_probability_)) {
          person->SetCellType(kInfected);
        }
        break;
      }
      default:
        break;  // recovered agents stay recovered
    }
  }

  Behavior* NewCopy() const override { return new SirBehavior(*this); }

  void WriteState(std::ostream& out) const override {
    io::WriteScalar(out, infection_radius_);
    io::WriteScalar(out, infection_probability_);
    io::WriteScalar<int32_t>(out, recovery_time_);
    io::WriteScalar<int32_t>(out, infected_for_);
  }
  void ReadState(std::istream& in) override {
    infection_radius_ = io::ReadScalar<real_t>(in);
    infection_probability_ = io::ReadScalar<real_t>(in);
    recovery_time_ = io::ReadScalar<int32_t>(in);
    infected_for_ = io::ReadScalar<int32_t>(in);
  }

 private:
  real_t infection_radius_ = 10;
  real_t infection_probability_ = 0.25;
  int recovery_time_ = 50;
  int infected_for_ = 0;
};

BDM_REGISTER_BEHAVIOR(SirBehavior);

}  // namespace

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();
  const Real3 center = {config.space / 2, config.space / 2, config.space / 2};
  for (uint64_t i = 0; i < config.num_persons; ++i) {
    Real3 position;
    if (random->Uniform() < config.urban_fraction) {
      // Dense cluster: gaussian blob around the center (load imbalance).
      const real_t sigma = config.space / 20;
      position = center + Real3{random->Gaussian(0, sigma),
                                random->Gaussian(0, sigma),
                                random->Gaussian(0, sigma)};
      for (int c = 0; c < 3; ++c) {
        position[c] = std::clamp<real_t>(position[c], 0, config.space);
      }
    } else {
      position = random->UniformPoint(0, config.space);
    }
    auto* person = new Cell(position, config.diameter);
    person->SetCellType(random->Uniform() < config.initial_infected_fraction
                            ? kInfected
                            : kSusceptible);
    person->AddBehavior(new SirBehavior(config));
    person->AddBehavior(new RandomWalk(config.step_length));
    person->AddBehavior(new ReflectiveBounds(0, config.space));
    rm->AddAgent(person);
  }
}

std::array<uint64_t, 3> CountStates(Simulation* sim) {
  std::array<uint64_t, 3> counts = {0, 0, 0};
  sim->GetResourceManager()->ForEachAgent([&](Agent* agent, AgentHandle) {
    const int state = static_cast<Cell*>(agent)->GetCellType();
    if (state >= 0 && state < 3) {
      ++counts[state];
    }
  });
  return counts;
}

}  // namespace bdm::models::epidemiology
