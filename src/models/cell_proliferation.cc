#include "models/cell_proliferation.h"

#include <cmath>

#include "core/cell.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/common_behaviors.h"

namespace bdm::models::proliferation {

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();
  const auto side = static_cast<uint64_t>(
      std::cbrt(static_cast<double>(config.num_cells)) + 1e-9);
  const real_t extent = static_cast<real_t>(side) * config.spacing;
  uint64_t created = 0;
  for (uint64_t z = 0; z < side && created < config.num_cells; ++z) {
    for (uint64_t y = 0; y < side && created < config.num_cells; ++y) {
      for (uint64_t x = 0; x < side && created < config.num_cells; ++x) {
        Real3 position;
        if (config.random_init) {
          position = random->UniformPoint(0, extent);
        } else {
          position = {static_cast<real_t>(x) * config.spacing,
                      static_cast<real_t>(y) * config.spacing,
                      static_cast<real_t>(z) * config.spacing};
        }
        auto* cell = new Cell(position, config.diameter);
        cell->AddBehavior(new GrowDivide(config.volume_growth_rate,
                                         config.division_diameter));
        rm->AddAgent(cell);
        ++created;
      }
    }
  }
}

}  // namespace bdm::models::proliferation
