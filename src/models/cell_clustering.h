// Cell clustering model (paper Table 1, column 2).
//
// Characteristics: uses diffusion (the paper runs 54M diffusion volumes).
// Two cell populations each secrete their own substance and chemotactically
// follow their own substance's gradient, so same-type cells aggregate into
// clusters over time.
#ifndef BDM_MODELS_CELL_CLUSTERING_H_
#define BDM_MODELS_CELL_CLUSTERING_H_

#include <cstdint>

#include "math/real.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::clustering {

struct Config {
  uint64_t num_cells = 10000;
  real_t space = 400;             // cubic simulation box side length
  real_t diameter = 10;
  int substance_resolution = 32;  // diffusion volumes per axis
  real_t diffusion_coefficient = 100;
  real_t decay = 1.0;
  real_t secretion_rate = 100;
  /// um per unit time along the own-substance gradient (10 um per
  /// iteration at dt = 0.01 -- strong chemotaxis so clusters form within
  /// the paper's 1000-iteration budget).
  real_t chemotaxis_speed = 1000;
};

void Build(Simulation* sim, const Config& config = {});

/// Mean fraction of same-type cells among each cell's neighbors within
/// `radius` -- approaches 1 as clusters form. Requires a fresh environment.
real_t SameTypeNeighborFraction(Simulation* sim, real_t radius);

}  // namespace bdm::models::clustering

#endif  // BDM_MODELS_CELL_CLUSTERING_H_
