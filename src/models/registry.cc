#include "models/registry.h"

#include <cmath>

#include "models/cell_clustering.h"
#include "models/cell_proliferation.h"
#include "models/cell_sorting.h"
#include "models/epidemiology.h"
#include "models/neuroscience.h"
#include "models/oncology.h"

namespace bdm::models {

namespace {

void BuildProliferation(Simulation* sim, uint64_t scale) {
  proliferation::Config config;
  config.num_cells = scale;
  proliferation::Build(sim, config);
}

void BuildClustering(Simulation* sim, uint64_t scale) {
  clustering::Config config;
  config.num_cells = scale;
  // Keep density roughly constant as the scale grows (tissue-like packing
  // so the boxes/agent ratio stays realistic at reduced agent counts).
  config.space = std::max<real_t>(
      100, 20 * std::cbrt(static_cast<real_t>(scale)));
  clustering::Build(sim, config);
}

void ConfigureEpidemiology(Param* param) {
  // The infection radius (10 um) far exceeds the person diameter (5 um); a
  // modeler sets the grid box length to the interaction radius instead of
  // letting it default to the largest diameter, which would make the
  // sparse space pay for 64x more boxes.
  param->fixed_box_length = 10;
}

void BuildEpidemiology(Simulation* sim, uint64_t scale) {
  epidemiology::Config config;
  config.num_persons = scale;
  config.space =
      std::max<real_t>(200, 80 * std::cbrt(static_cast<real_t>(scale)));
  epidemiology::Build(sim, config);
}

void BuildNeuroscience(Simulation* sim, uint64_t scale) {
  neuroscience::Config config;
  // Most agents of this model are neurite elements created during the run;
  // scale refers to the number of neurons.
  config.num_neurons = std::max<uint64_t>(scale / 64, 4);
  neuroscience::Build(sim, config);
}

void ConfigureNeuroscience(Param* param) {
  // "The modeler usually knows this characteristic a priori and only
  // enables the mechanism if static regions are expected" (Section 6.6).
  param->detect_static_agents = true;
}

void BuildOncology(Simulation* sim, uint64_t scale) {
  oncology::Config config;
  config.num_cells = scale;
  // Dense enough that the core is hypoxic from the start (the model must
  // delete agents, Table 1).
  config.spheroid_radius =
      std::max<real_t>(40, 5 * std::cbrt(static_cast<real_t>(scale)));
  oncology::Build(sim, config);
}

void BuildCellSorting(Simulation* sim, uint64_t scale) {
  cell_sorting::Config config;
  config.num_cells = scale;
  config.space = std::max<real_t>(
      100, 14 * std::cbrt(static_cast<real_t>(scale)));
  cell_sorting::Build(sim, config);
}

}  // namespace

const std::vector<ModelInfo>& AllModels() {
  static const std::vector<ModelInfo> models = {
      {.name = "proliferation",
       .creates_agents = true,
       .paper_iterations = 500,
       .build = &BuildProliferation},
      {.name = "clustering",
       .uses_diffusion = true,
       .paper_iterations = 1000,
       .build = &BuildClustering},
      {.name = "epidemiology",
       .load_imbalance = true,
       .random_movement = true,
       .paper_iterations = 1000,
       .build = &BuildEpidemiology,
       .configure = &ConfigureEpidemiology},
      {.name = "neuroscience",
       .creates_agents = true,
       .modifies_neighbors = true,
       .load_imbalance = true,
       .uses_diffusion = true,
       .has_static_regions = true,
       .paper_iterations = 500,
       .build = &BuildNeuroscience,
       .configure = &ConfigureNeuroscience},
      {.name = "oncology",
       .creates_agents = true,
       .deletes_agents = true,
       .random_movement = true,
       .paper_iterations = 288,
       .build = &BuildOncology},
      {.name = "cell_sorting",
       .random_movement = true,
       .paper_iterations = 500,
       .build = &BuildCellSorting},
  };
  return models;
}

const ModelInfo* FindModel(const std::string& name) {
  for (const ModelInfo& model : AllModels()) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

}  // namespace bdm::models
