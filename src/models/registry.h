// Model registry: uniform access to the benchmark simulations for the
// evaluation harnesses (one entry per Table 1 column plus the Biocellion
// cell-sorting model).
#ifndef BDM_MODELS_REGISTRY_H_
#define BDM_MODELS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/param.h"

namespace bdm {
class Simulation;
}

namespace bdm::models {

struct ModelInfo {
  std::string name;
  /// Table 1 characteristics (printed by bench_table1, asserted by tests).
  bool creates_agents = false;
  bool deletes_agents = false;
  bool modifies_neighbors = false;
  bool load_imbalance = false;
  bool random_movement = false;
  bool uses_diffusion = false;
  bool has_static_regions = false;
  /// Iteration count of the paper's full benchmark run (Table 1 bottom).
  int paper_iterations = 0;
  /// Populates the simulation with approximately `scale` initial agents.
  void (*build)(Simulation* sim, uint64_t scale) = nullptr;
  /// Model-specific parameter adjustments (e.g. the neuroscience model
  /// enables detect_static_agents, as the paper's modelers would).
  void (*configure)(Param* param) = nullptr;
};

/// All registered models in Table 1 order, then cell_sorting.
const std::vector<ModelInfo>& AllModels();

/// Lookup by name; returns nullptr when unknown.
const ModelInfo* FindModel(const std::string& name);

}  // namespace bdm::models

#endif  // BDM_MODELS_REGISTRY_H_
