#include "models/neuroscience.h"

#include <cmath>
#include <memory>

#include "continuum/diffusion_grid.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "neuro/neurite_element.h"
#include "neuro/neuron_soma.h"

namespace bdm::models::neuroscience {

void Build(Simulation* sim, const Config& config) {
  auto* rm = sim->GetResourceManager();
  auto* ctx = sim->GetActiveExecutionContext();
  auto* random = ctx->random();

  const auto side = static_cast<uint64_t>(
      std::sqrt(static_cast<double>(config.num_neurons)) + 1e-9);
  const real_t extent = static_cast<real_t>(side) * config.spacing;
  if (config.with_substance) {
    // Guidance cue field spanning the sheet plus the expected growth height.
    const real_t height = 200;
    sim->AddDiffusionGrid(
        std::make_unique<DiffusionGrid>("guidance", 100, 0.01,
                                        config.substance_resolution),
        {0, 0, 0}, {extent, extent, height});
  }

  uint64_t created = 0;
  for (uint64_t y = 0; y < side && created < config.num_neurons; ++y) {
    for (uint64_t x = 0; x < side && created < config.num_neurons; ++x) {
      auto* soma =
          new neuro::NeuronSoma({static_cast<real_t>(x) * config.spacing,
                                 static_cast<real_t>(y) * config.spacing, 0},
                                config.soma_diameter);
      rm->AddAgent(soma);
      for (int n = 0; n < config.neurites_per_soma; ++n) {
        // Grow mostly upward with a random tilt.
        const Real3 direction =
            (Real3{random->Uniform(-0.4, 0.4), random->Uniform(-0.4, 0.4), 1})
                .Normalized();
        auto* neurite = soma->ExtendNewNeurite(ctx, direction);
        neurite->AddBehavior(new neuro::GrowthCone(config.growth));
      }
      ++created;
    }
  }
  // Somata were added through the ResourceManager directly, but the
  // neurites sit in the execution-context buffer; commit them so the model
  // is complete before the first iteration.
  rm->Commit(sim->GetAllExecutionContexts());
}

TreeStats ComputeTreeStats(Simulation* sim) {
  TreeStats stats;
  sim->GetResourceManager()->ForEachAgent([&](Agent* agent, AgentHandle) {
    if (auto* neurite = dynamic_cast<neuro::NeuriteElement*>(agent)) {
      ++stats.elements;
      if (neurite->IsTerminal()) {
        ++stats.terminals;
      }
    } else if (dynamic_cast<neuro::NeuronSoma*>(agent) != nullptr) {
      ++stats.somata;
    }
  });
  return stats;
}

}  // namespace bdm::models::neuroscience
