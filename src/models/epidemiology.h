// Epidemiology model (paper Table 1, column 3).
//
// Characteristics: load imbalance and agents moving randomly with large
// distances between iterations. Persons random-walk through a large space
// and carry an SIR (susceptible / infected / recovered) state: susceptible
// agents become infected with some probability when an infected agent is
// within the infection radius, and infected agents recover after a fixed
// number of iterations. Load imbalance comes from a dense population center
// inside a sparse periphery.
#ifndef BDM_MODELS_EPIDEMIOLOGY_H_
#define BDM_MODELS_EPIDEMIOLOGY_H_

#include <array>
#include <cstdint>

#include "math/real.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::epidemiology {

/// SIR states, stored in Cell::cell_type so metrics can read them without
/// touching the behavior objects.
enum State : int { kSusceptible = 0, kInfected = 1, kRecovered = 2 };

struct Config {
  uint64_t num_persons = 10000;
  real_t space = 2000;             // large, sparsely populated space
  real_t diameter = 5;
  real_t step_length = 15;         // random-walk distance per iteration
  real_t infection_radius = 10;
  real_t infection_probability = 0.25;
  int recovery_time = 50;          // iterations until recovery
  real_t initial_infected_fraction = 0.01;
  /// Fraction of the population packed into a dense central cluster
  /// (creates the load imbalance of Table 1).
  real_t urban_fraction = 0.5;
};

void Build(Simulation* sim, const Config& config = {});

/// Returns {#susceptible, #infected, #recovered}.
std::array<uint64_t, 3> CountStates(Simulation* sim);

}  // namespace bdm::models::epidemiology

#endif  // BDM_MODELS_EPIDEMIOLOGY_H_
