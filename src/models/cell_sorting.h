// Biocellion cell-sorting model (paper Section 6.5, Figure 7).
//
// Two adhesive cell types start randomly mixed; differential adhesion
// (same-type contacts are stickier than cross-type contacts, Steinberg's
// differential adhesion hypothesis) plus random micro-motion causes the
// types to sort into same-type domains -- the model Kang et al. use for the
// Biocellion performance evaluation, reimplemented here "with identical
// model parameters" in spirit.
#ifndef BDM_MODELS_CELL_SORTING_H_
#define BDM_MODELS_CELL_SORTING_H_

#include <cstdint>

#include "math/real.h"
#include "physics/interaction_force.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::cell_sorting {

struct Config {
  uint64_t num_cells = 10000;
  real_t space = 300;
  real_t diameter = 10;
  real_t micro_motion_step = 0.1;
  real_t same_type_adhesion = 3.0;   // relative to cross-type adhesion 1.0
  /// Active same-type attraction: speed (um per unit time) of the motion
  /// toward the local same-type / away from the cross-type neighborhood.
  /// Purely force-based differential adhesion jams at high packing
  /// fractions; this motility term is the standard fix and produces the
  /// sorted-domain end state of the paper's Figure 7a.
  real_t attraction_speed = 20;
  real_t perception_radius = 15;
};

/// Differential adhesion: the attractive branch of the Cortex3D force is
/// scaled up for same-type pairs.
class AdhesiveForce : public InteractionForce {
 public:
  explicit AdhesiveForce(real_t same_type_adhesion)
      : InteractionForce(2.0, 0.8, 0.3), same_type_adhesion_(same_type_adhesion) {}

 protected:
  real_t AdhesionScale(const Agent* lhs, const Agent* rhs) const override;

 private:
  real_t same_type_adhesion_;
};

void Build(Simulation* sim, const Config& config = {});

/// Sorting metric: mean same-type fraction among contact neighbors; 0.5 for
/// a random mix, rising as the types sort (compare paper Figure 7a).
real_t SortingIndex(Simulation* sim, real_t radius);

}  // namespace bdm::models::cell_sorting

#endif  // BDM_MODELS_CELL_SORTING_H_
