// Oncology (tumor spheroid) model (paper Table 1, column 5).
//
// Characteristics: creates AND deletes agents (the only benchmark that
// removes agents -- it drives the parallel-removal result of Section 6.7),
// and agents move randomly (micro-motion). Tumor cells grow and divide at
// the spheroid rim; crowded cells in the core die (hypoxia proxy) and are
// removed from the simulation. Initialized as a random ball of cells.
#ifndef BDM_MODELS_ONCOLOGY_H_
#define BDM_MODELS_ONCOLOGY_H_

#include <cstdint>

#include "math/real.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::oncology {

struct Config {
  uint64_t num_cells = 5000;
  real_t spheroid_radius = 85;
  real_t diameter = 10;
  real_t volume_growth_rate = 3000;
  real_t division_diameter = 14;
  real_t micro_motion_step = 0.5;
  /// A cell with more than this many neighbors within the crowding radius
  /// is considered hypoxic.
  int crowding_threshold = 12;
  real_t crowding_radius = 12;
  /// Per-iteration death probability for hypoxic cells.
  real_t death_probability = 0.05;
};

void Build(Simulation* sim, const Config& config = {});

}  // namespace bdm::models::oncology

#endif  // BDM_MODELS_ONCOLOGY_H_
