// Flocking (boids) model.
//
// The paper positions agent-based modeling far beyond biology (Section 1:
// sociology, economics, technology, ...). This classic Reynolds flocking
// model demonstrates the engine on a non-biological workload: agents carry
// a velocity, steer by separation / alignment / cohesion over their
// neighborhood, and develop global polarization from local rules -- while
// exercising the same neighbor-search and iteration machinery as the
// Table 1 models.
#ifndef BDM_MODELS_FLOCKING_H_
#define BDM_MODELS_FLOCKING_H_

#include <cstdint>
#include <iosfwd>

#include "core/cell.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::flocking {

/// A boid: a spherical agent with persistent velocity.
class Boid : public Cell {
 public:
  Boid() = default;
  Boid(const Real3& position, real_t diameter) : Cell(position, diameter) {}
  Boid(const Boid&) = default;

  Agent* NewCopy() const override { return new Boid(*this); }

  const Real3& GetVelocity() const { return velocity_; }
  void SetVelocity(const Real3& velocity) { velocity_ = velocity; }

  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  Real3 velocity_{1, 0, 0};
};

struct Config {
  uint64_t num_boids = 1000;
  real_t space = 300;
  real_t diameter = 4;
  real_t perception_radius = 30;
  real_t separation_radius = 8;
  real_t max_speed = 5;            // distance units per iteration
  real_t separation_weight = 0.6;
  real_t alignment_weight = 0.25;
  real_t cohesion_weight = 0.08;
};

void Build(Simulation* sim, const Config& config = {});

/// Polarization order parameter: |mean of velocity unit vectors|.
/// ~0 for random headings, -> 1 for a fully aligned flock.
real_t Polarization(Simulation* sim);

}  // namespace bdm::models::flocking

#endif  // BDM_MODELS_FLOCKING_H_
