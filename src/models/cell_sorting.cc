#include "models/cell_sorting.h"

#include <memory>

#include "core/cell.h"
#include "io/binary.h"
#include "io/checkpoint.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "env/environment.h"
#include "models/common_behaviors.h"

namespace bdm::models::cell_sorting {

namespace {

/// Differential-adhesion motility: cells drift toward their same-type
/// neighborhood and away from cross-type contacts (see Config comment).
class SameTypeAttraction : public Behavior {
 public:
  SameTypeAttraction() = default;
  SameTypeAttraction(real_t speed, real_t radius)
      : speed_(speed), radius_(radius) {}

  void Run(Agent* agent, ExecutionContext*) override {
    auto* cell = static_cast<Cell*>(agent);
    auto* sim = Simulation::GetActive();
    Real3 direction{};
    sim->GetEnvironment()->ForEachNeighbor(
        *agent, radius_ * radius_, [&](Agent* neighbor, real_t) {
          const Real3 towards = neighbor->GetPosition() - agent->GetPosition();
          const bool same = static_cast<Cell*>(neighbor)->GetCellType() ==
                            cell->GetCellType();
          direction += same ? towards : -towards;
        });
    if (direction.SquaredNorm() > kEpsilon) {
      cell->SetPosition(cell->GetPosition() +
                        direction.Normalized() * (speed_ * sim->GetParam().dt));
    }
  }

  Behavior* NewCopy() const override { return new SameTypeAttraction(*this); }

  void WriteState(std::ostream& out) const override {
    io::WriteScalar(out, speed_);
    io::WriteScalar(out, radius_);
  }
  void ReadState(std::istream& in) override {
    speed_ = io::ReadScalar<real_t>(in);
    radius_ = io::ReadScalar<real_t>(in);
  }

 private:
  real_t speed_ = 20;
  real_t radius_ = 15;
};

BDM_REGISTER_BEHAVIOR(SameTypeAttraction);

}  // namespace

real_t AdhesiveForce::AdhesionScale(const Agent* lhs, const Agent* rhs) const {
  const auto* a = static_cast<const Cell*>(lhs);
  const auto* b = static_cast<const Cell*>(rhs);
  return a->GetCellType() == b->GetCellType() ? same_type_adhesion_ : real_t{1};
}

void Build(Simulation* sim, const Config& config) {
  sim->SetInteractionForce(
      std::make_unique<AdhesiveForce>(config.same_type_adhesion));
  auto* rm = sim->GetResourceManager();
  auto* random = sim->GetActiveExecutionContext()->random();
  for (uint64_t i = 0; i < config.num_cells; ++i) {
    auto* cell = new Cell(random->UniformPoint(0, config.space), config.diameter);
    cell->SetCellType(static_cast<int>(i % 2));
    // Micro-motion anneals the sorting (thermal fluctuation analogue).
    cell->AddBehavior(new RandomWalk(config.micro_motion_step));
    cell->AddBehavior(new SameTypeAttraction(config.attraction_speed,
                                             config.perception_radius));
    cell->AddBehavior(new ReflectiveBounds(0, config.space));
    rm->AddAgent(cell);
  }
}

real_t SortingIndex(Simulation* sim, real_t radius) {
  auto* rm = sim->GetResourceManager();
  auto* env = sim->GetEnvironment();
  env->Update(*rm, sim->GetThreadPool());
  double same = 0;
  double total = 0;
  rm->ForEachAgent([&](Agent* agent, AgentHandle) {
    auto* cell = static_cast<Cell*>(agent);
    env->ForEachNeighbor(*agent, radius * radius, [&](Agent* neighbor, real_t) {
      total += 1;
      if (static_cast<Cell*>(neighbor)->GetCellType() == cell->GetCellType()) {
        same += 1;
      }
    });
  });
  return total > 0 ? static_cast<real_t>(same / total) : real_t{0};
}

}  // namespace bdm::models::cell_sorting
