#include "models/common_behaviors.h"

#include <algorithm>

#include "io/binary.h"

#include "continuum/diffusion_grid.h"
#include "core/cell.h"
#include "core/execution_context.h"
#include "core/simulation.h"

namespace bdm::models {

void GrowDivide::Run(Agent* agent, ExecutionContext* ctx) {
  auto* cell = static_cast<Cell*>(agent);
  if (cell->GetDiameter() >= division_diameter_) {
    cell->Divide(ctx, ctx->random()->UnitVector());
  } else {
    cell->ChangeVolume(volume_growth_rate_ *
                       Simulation::GetActive()->GetParam().dt);
  }
}

void RandomWalk::Run(Agent* agent, ExecutionContext* ctx) {
  agent->SetPosition(agent->GetPosition() +
                     ctx->random()->UnitVector() * step_length_);
}

void ReflectiveBounds::Run(Agent* agent, ExecutionContext* ctx) {
  (void)ctx;
  Real3 position = agent->GetPosition();
  bool moved = false;
  for (int c = 0; c < 3; ++c) {
    if (position[c] < min_) {
      position[c] = std::min(2 * min_ - position[c], max_);
      moved = true;
    } else if (position[c] > max_) {
      position[c] = std::max(2 * max_ - position[c], min_);
      moved = true;
    }
  }
  if (moved) {
    agent->SetPosition(position);
  }
}

void Secretion::Run(Agent* agent, ExecutionContext* ctx) {
  (void)ctx;
  grid_->IncreaseConcentrationBy(
      agent->GetPosition(), rate_ * Simulation::GetActive()->GetParam().dt);
}

void Chemotaxis::Run(Agent* agent, ExecutionContext* ctx) {
  (void)ctx;
  const Real3 gradient = grid_->GetGradient(agent->GetPosition());
  if (gradient.SquaredNorm() < kEpsilon) {
    return;
  }
  const real_t dt = Simulation::GetActive()->GetParam().dt;
  agent->SetPosition(agent->GetPosition() +
                     gradient.Normalized() * (speed_ * dt));
}


// --- checkpoint serialization ---------------------------------------------

void GrowDivide::WriteState(std::ostream& out) const {
  io::WriteScalar(out, volume_growth_rate_);
  io::WriteScalar(out, division_diameter_);
}

void GrowDivide::ReadState(std::istream& in) {
  volume_growth_rate_ = io::ReadScalar<real_t>(in);
  division_diameter_ = io::ReadScalar<real_t>(in);
}

void RandomWalk::WriteState(std::ostream& out) const {
  io::WriteScalar(out, step_length_);
}

void RandomWalk::ReadState(std::istream& in) {
  step_length_ = io::ReadScalar<real_t>(in);
}

void ReflectiveBounds::WriteState(std::ostream& out) const {
  io::WriteScalar(out, min_);
  io::WriteScalar(out, max_);
}

void ReflectiveBounds::ReadState(std::istream& in) {
  min_ = io::ReadScalar<real_t>(in);
  max_ = io::ReadScalar<real_t>(in);
}

// Substance-coupled behaviors persist the substance *name* and re-resolve
// the grid pointer inside the restoring simulation.
void Secretion::WriteState(std::ostream& out) const {
  io::WriteString(out, grid_ != nullptr ? grid_->GetName() : "");
  io::WriteScalar(out, rate_);
}

void Secretion::ReadState(std::istream& in) {
  const std::string substance = io::ReadString(in);
  grid_ = Simulation::GetActive()->GetDiffusionGrid(substance);
  rate_ = io::ReadScalar<real_t>(in);
}

void Chemotaxis::WriteState(std::ostream& out) const {
  io::WriteString(out, grid_ != nullptr ? grid_->GetName() : "");
  io::WriteScalar(out, speed_);
}

void Chemotaxis::ReadState(std::istream& in) {
  const std::string substance = io::ReadString(in);
  grid_ = Simulation::GetActive()->GetDiffusionGrid(substance);
  speed_ = io::ReadScalar<real_t>(in);
}

}  // namespace bdm::models
