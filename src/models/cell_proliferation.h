// Cell proliferation model (paper Table 1, column 1).
//
// Characteristics: creates new agents during the simulation; initialized as
// a regular 3D grid of cells (which the paper notes improves memory
// alignment compared to random initialization, Section 6.11). Every cell
// grows at a constant volume rate and divides at a threshold diameter.
#ifndef BDM_MODELS_CELL_PROLIFERATION_H_
#define BDM_MODELS_CELL_PROLIFERATION_H_

#include <cstdint>

#include "math/real.h"

namespace bdm {
class Simulation;
}

namespace bdm::models::proliferation {

struct Config {
  uint64_t num_cells = 8000;      // rounded down to a cube number
  real_t spacing = 20;            // initial lattice spacing
  real_t diameter = 8;
  real_t volume_growth_rate = 4000;
  real_t division_diameter = 16;
  bool random_init = false;       // Section 6.11 studies the random variant
};

void Build(Simulation* sim, const Config& config = {});

}  // namespace bdm::models::proliferation

#endif  // BDM_MODELS_CELL_PROLIFERATION_H_
