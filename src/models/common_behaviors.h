// Behaviors shared across the benchmark models (paper Section 6.1).
#ifndef BDM_MODELS_COMMON_BEHAVIORS_H_
#define BDM_MODELS_COMMON_BEHAVIORS_H_

#include "core/behavior.h"
#include "math/real.h"
#include "math/real3.h"

namespace bdm {
class DiffusionGrid;
}

namespace bdm::models {

/// Grows the cell volume at a constant rate and divides once the diameter
/// reaches a threshold (cell proliferation model; also reused by oncology).
class GrowDivide : public Behavior {
 public:
  GrowDivide() = default;
  GrowDivide(real_t volume_growth_rate, real_t division_diameter)
      : volume_growth_rate_(volume_growth_rate),
        division_diameter_(division_diameter) {}

  void Run(Agent* agent, ExecutionContext* ctx) override;
  Behavior* NewCopy() const override { return new GrowDivide(*this); }
  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  /// um^3 per unit time; at dt = 0.01 the default doubles an 8 um cell's
  /// volume in roughly 50 iterations, matching the pace of the paper's
  /// 500-iteration proliferation benchmark.
  real_t volume_growth_rate_ = 4000;
  real_t division_diameter_ = 16;
};

/// Uniform random displacement of fixed step length per iteration
/// (epidemiology: "agents move randomly with large distances").
class RandomWalk : public Behavior {
 public:
  RandomWalk() = default;
  explicit RandomWalk(real_t step_length) : step_length_(step_length) {}

  void Run(Agent* agent, ExecutionContext* ctx) override;
  Behavior* NewCopy() const override { return new RandomWalk(*this); }
  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  real_t step_length_ = 1;
};

/// Deposits substance into a diffusion grid at the agent position.
class Secretion : public Behavior {
 public:
  Secretion() = default;
  Secretion(DiffusionGrid* grid, real_t rate) : grid_(grid), rate_(rate) {}

  void Run(Agent* agent, ExecutionContext* ctx) override;
  Behavior* NewCopy() const override { return new Secretion(*this); }
  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  DiffusionGrid* grid_ = nullptr;
  real_t rate_ = 1;
};

/// Keeps the agent inside an axis-aligned box by reflecting the
/// out-of-bounds coordinate back across the wall. Applied after movement
/// behaviors so random walkers stay inside the simulation space.
class ReflectiveBounds : public Behavior {
 public:
  ReflectiveBounds() = default;
  ReflectiveBounds(real_t min, real_t max) : min_(min), max_(max) {}

  void Run(Agent* agent, ExecutionContext* ctx) override;
  Behavior* NewCopy() const override { return new ReflectiveBounds(*this); }
  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  real_t min_ = 0;
  real_t max_ = 1000;
};

/// Moves the agent up the concentration gradient of a substance
/// (cell clustering model).
class Chemotaxis : public Behavior {
 public:
  Chemotaxis() = default;
  Chemotaxis(DiffusionGrid* grid, real_t speed) : grid_(grid), speed_(speed) {}

  void Run(Agent* agent, ExecutionContext* ctx) override;
  Behavior* NewCopy() const override { return new Chemotaxis(*this); }
  void WriteState(std::ostream& out) const override;
  void ReadState(std::istream& in) override;

 private:
  DiffusionGrid* grid_ = nullptr;
  real_t speed_ = 1;
};

}  // namespace bdm::models

#endif  // BDM_MODELS_COMMON_BEHAVIORS_H_
