// SIR epidemic on randomly moving agents (the epidemiology benchmark model
// of paper Table 1: load imbalance + large random movements).
//
// Prints the daily S/I/R counts -- the classic epidemic curve.
//
// Usage: epidemic [iterations] [persons]
#include <cstdio>
#include <cstdlib>

#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/epidemiology.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 150;
  const uint64_t persons = argc > 2 ? std::atoll(argv[2]) : 5000;

  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;
  param.agent_sort_frequency = 20;  // frequent re-sorting pays off less here
  param.use_bdm_memory_manager = true;

  bdm::Simulation simulation("epidemic", param);
  bdm::models::epidemiology::Config config;
  config.num_persons = persons;
  config.space = 60 * std::cbrt(static_cast<double>(persons));
  bdm::models::epidemiology::Build(&simulation, config);

  std::printf("epidemic: %llu persons in a %.0f um box\n",
              static_cast<unsigned long long>(persons), config.space);
  std::printf("%8s %10s %10s %10s\n", "iter", "S", "I", "R");
  for (int i = 0; i < iterations; i += 10) {
    simulation.Simulate(10);
    const auto counts = bdm::models::epidemiology::CountStates(&simulation);
    std::printf("%8d %10llu %10llu %10llu\n", i + 10,
                static_cast<unsigned long long>(counts[0]),
                static_cast<unsigned long long>(counts[1]),
                static_cast<unsigned long long>(counts[2]));
  }
  return 0;
}
