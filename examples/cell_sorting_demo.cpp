// Biocellion cell-sorting model (paper Section 6.5, Figure 7a).
//
// Two randomly mixed adhesive cell types sort into same-type domains. The
// demo tracks the sorting index (same-type contact fraction: 0.5 = random
// mix, -> 1 as domains form) and writes a CSV snapshot comparable to the
// paper's Figure 7a rendering.
//
// Usage: cell_sorting_demo [iterations] [cells]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/cell.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/cell_sorting.h"
#include "output_dir.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 200;
  const uint64_t cells = argc > 2 ? std::atoll(argv[2]) : 5000;

  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;
  param.agent_sort_frequency = 10;
  param.use_bdm_memory_manager = true;

  bdm::Simulation simulation("cell_sorting", param);
  bdm::models::cell_sorting::Config config;
  config.num_cells = cells;
  config.space = 14 * std::cbrt(static_cast<double>(cells));
  bdm::models::cell_sorting::Build(&simulation, config);

  std::printf("cell_sorting: %llu cells of two types, box %.0f um\n",
              static_cast<unsigned long long>(cells), config.space);
  std::printf("  sorting index at start: %.3f (0.5 = random mix)\n",
              bdm::models::cell_sorting::SortingIndex(&simulation, 12));
  for (int i = 0; i < iterations; i += 25) {
    simulation.Simulate(25);
    std::printf("  iter %4d: sorting index %.3f\n", i + 25,
                bdm::models::cell_sorting::SortingIndex(&simulation, 12));
  }

  const std::string csv_path =
      bdm::examples::OutputPath("cell_sorting_final.csv");
  std::ofstream csv(csv_path);
  csv << "x,y,z,type\n";
  simulation.GetResourceManager()->ForEachAgent(
      [&](bdm::Agent* agent, bdm::AgentHandle) {
        const auto& p = agent->GetPosition();
        csv << p.x << "," << p.y << "," << p.z << ","
            << static_cast<bdm::Cell*>(agent)->GetCellType() << "\n";
      });
  std::printf("cell_sorting: wrote %s\n", csv_path.c_str());
  return 0;
}
