// Parameter sweep: the model-development loop the paper motivates.
//
// "Model parameters that cannot be derived from the literature are
// determined through optimization. An optimization algorithm generates a
// parameter set, executes the model, and evaluates the error ..." (paper
// Section 1). This example sweeps the epidemiology model's infection
// probability, runs a full simulation per candidate, and reports the
// attack rate (final fraction ever infected) -- the kind of many-run
// study whose wall-clock cost the engine's performance work targets.
//
// Usage: parameter_sweep [persons] [iterations]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/epidemiology.h"

int main(int argc, char** argv) {
  const uint64_t persons = argc > 1 ? std::atoll(argv[1]) : 2000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 100;

  std::printf("parameter sweep: epidemiology, %llu persons, %d iterations\n",
              static_cast<unsigned long long>(persons), iterations);
  std::printf("%22s %14s %12s\n", "infection probability", "attack rate",
              "runtime s");

  const double probabilities[] = {0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  for (double probability : probabilities) {
    bdm::Param param;
    param.num_threads = 4;
    param.num_numa_domains = 2;
    param.agent_sort_frequency = 20;
    param.use_bdm_memory_manager = true;
    param.fixed_box_length = 10;

    const auto start = std::chrono::steady_clock::now();
    double attack_rate = 0;
    {
      bdm::Simulation sim("sweep", param);
      bdm::models::epidemiology::Config config;
      config.num_persons = persons;
      config.space = 50 * std::cbrt(static_cast<double>(persons));
      config.infection_probability = probability;
      bdm::models::epidemiology::Build(&sim, config);
      sim.Simulate(iterations);
      const auto counts = bdm::models::epidemiology::CountStates(&sim);
      attack_rate =
          1.0 - static_cast<double>(counts[0]) / static_cast<double>(persons);
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("%22.2f %13.1f%% %12.2f\n", probability, attack_rate * 100,
                seconds);
  }
  return 0;
}
