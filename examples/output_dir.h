// Resolves where example binaries drop their output files.
//
// The build defines BDM_EXAMPLES_OUTPUT_DIR as the example binary directory,
// so `./build/examples/tumor_growth` run from anywhere writes its CSV under
// build/ instead of the current working directory. A manual compile without
// the define falls back to the CWD.
#ifndef BDM_EXAMPLES_OUTPUT_DIR_H_
#define BDM_EXAMPLES_OUTPUT_DIR_H_

#include <string>

namespace bdm::examples {

inline std::string OutputPath(const std::string& filename) {
#ifdef BDM_EXAMPLES_OUTPUT_DIR
  return std::string(BDM_EXAMPLES_OUTPUT_DIR) + "/" + filename;
#else
  return filename;
#endif
}

}  // namespace bdm::examples

#endif  // BDM_EXAMPLES_OUTPUT_DIR_H_
