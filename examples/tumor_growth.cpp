// Tumor spheroid growth (the oncology benchmark model of paper Table 1).
//
// Demonstrates a simulation that both creates agents (division at the rim)
// and deletes them (hypoxic death in the core) -- the workload that drives
// the parallel agent-removal algorithm of paper Section 3.2. Writes a CSV
// snapshot of the final state for plotting.
//
// Usage: tumor_growth [iterations] [initial_cells]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/cell.h"
#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/oncology.h"
#include "output_dir.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 100;
  const uint64_t initial_cells = argc > 2 ? std::atoll(argv[2]) : 3000;

  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;
  param.agent_sort_frequency = 10;
  param.use_bdm_memory_manager = true;

  bdm::Simulation simulation("tumor_growth", param);
  bdm::models::oncology::Config config;
  config.num_cells = initial_cells;
  config.spheroid_radius = 8 * std::cbrt(static_cast<double>(initial_cells));
  bdm::models::oncology::Build(&simulation, config);

  auto* rm = simulation.GetResourceManager();
  std::printf("tumor_growth: %llu initial cells, %d iterations\n",
              static_cast<unsigned long long>(rm->GetNumAgents()), iterations);
  for (int i = 0; i < iterations; i += 10) {
    simulation.Simulate(10);
    // Track the spheroid radius (max distance from origin).
    bdm::real_t max_r2 = 0;
    rm->ForEachAgent([&](bdm::Agent* agent, bdm::AgentHandle) {
      max_r2 = std::max(max_r2, agent->GetPosition().SquaredNorm());
    });
    std::printf("  iter %4d: %8llu cells, spheroid radius %.1f um\n", i + 10,
                static_cast<unsigned long long>(rm->GetNumAgents()),
                std::sqrt(max_r2));
  }

  const std::string csv_path =
      bdm::examples::OutputPath("tumor_final_state.csv");
  std::ofstream csv(csv_path);
  csv << "x,y,z,diameter\n";
  rm->ForEachAgent([&](bdm::Agent* agent, bdm::AgentHandle) {
    const auto& p = agent->GetPosition();
    csv << p.x << "," << p.y << "," << p.z << "," << agent->GetDiameter()
        << "\n";
  });
  std::printf("tumor_growth: wrote %s\n", csv_path.c_str());
  return 0;
}
