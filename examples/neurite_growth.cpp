// Neural development: somata sprouting branching dendrites (the
// neuroscience benchmark model of paper Table 1).
//
// This is the workload the static-agent detection of paper Section 5
// targets: only the growth front moves, the completed tree is static. The
// example prints tree statistics and the fraction of static agents, and
// writes the final morphology as CSV segments.
//
// Usage: neurite_growth [iterations] [neurons]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/neuroscience.h"
#include "neuro/neurite_element.h"
#include "output_dir.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 200;
  const uint64_t neurons = argc > 2 ? std::atoll(argv[2]) : 25;

  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;
  param.agent_sort_frequency = 20;
  param.use_bdm_memory_manager = true;
  param.detect_static_agents = true;  // the modeler knows regions are static

  bdm::Simulation simulation("neurite_growth", param);
  bdm::models::neuroscience::Config config;
  config.num_neurons = neurons;
  bdm::models::neuroscience::Build(&simulation, config);

  std::printf("neurite_growth: %llu neurons\n",
              static_cast<unsigned long long>(neurons));
  for (int i = 0; i < iterations; i += 20) {
    simulation.Simulate(20);
    const auto stats = bdm::models::neuroscience::ComputeTreeStats(&simulation);
    uint64_t num_static = 0;
    simulation.GetResourceManager()->ForEachAgent(
        [&](bdm::Agent* agent, bdm::AgentHandle) {
          num_static += agent->IsStatic();
        });
    std::printf(
        "  iter %4d: %6llu elements, %5llu growth cones, %5.1f%% static\n",
        i + 20, static_cast<unsigned long long>(stats.elements),
        static_cast<unsigned long long>(stats.terminals),
        100.0 * num_static /
            static_cast<double>(
                simulation.GetResourceManager()->GetNumAgents()));
  }

  const std::string csv_path =
      bdm::examples::OutputPath("neurite_morphology.csv");
  std::ofstream csv(csv_path);
  csv << "x0,y0,z0,x1,y1,z1,diameter\n";
  simulation.GetResourceManager()->ForEachAgent(
      [&](bdm::Agent* agent, bdm::AgentHandle) {
        auto* neurite = dynamic_cast<bdm::neuro::NeuriteElement*>(agent);
        if (neurite == nullptr) {
          return;
        }
        const auto p0 = neurite->GetProximalEnd();
        const auto& p1 = neurite->GetPosition();
        csv << p0.x << "," << p0.y << "," << p0.z << "," << p1.x << "," << p1.y
            << "," << p1.z << "," << neurite->GetDiameter() << "\n";
      });
  std::printf("neurite_growth: wrote %s\n", csv_path.c_str());
  return 0;
}
