// Flocking (boids): agent-based modeling outside biology.
//
// Watch the polarization order parameter rise as local steering rules
// (separation / alignment / cohesion) produce a globally aligned flock.
// Demonstrates a custom agent type with extra state (velocity) and custom
// behaviors on the unmodified engine.
//
// Usage: flocking [iterations] [boids]
#include <cstdio>
#include <cstdlib>

#include "core/resource_manager.h"
#include "core/simulation.h"
#include "models/flocking.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 200;
  const uint64_t boids = argc > 2 ? std::atoll(argv[2]) : 2000;

  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;
  param.agent_sort_frequency = 10;
  param.use_bdm_memory_manager = true;
  // The perception radius (30) far exceeds the boid diameter (4): set the
  // grid box length accordingly, as a modeler would (cf. epidemiology).
  param.fixed_box_length = 30;

  bdm::Simulation simulation("flocking", param);
  bdm::models::flocking::Config config;
  config.num_boids = boids;
  config.space = 22 * std::cbrt(static_cast<double>(boids));
  bdm::models::flocking::Build(&simulation, config);

  std::printf("flocking: %llu boids in a %.0f box\n",
              static_cast<unsigned long long>(boids), config.space);
  std::printf("  polarization at start: %.3f (0 = random headings)\n",
              bdm::models::flocking::Polarization(&simulation));
  for (int i = 0; i < iterations; i += 25) {
    simulation.Simulate(25);
    std::printf("  iter %4d: polarization %.3f\n", i + 25,
                bdm::models::flocking::Polarization(&simulation));
  }
  return 0;
}
