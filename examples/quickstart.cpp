// Quickstart: the smallest complete simulation.
//
// Creates a ball of cells that grow and divide, runs 100 iterations with
// every engine optimization at its default setting, and prints population
// statistics. Start here to learn the public API:
//
//   1. Fill a Param (thread count, optimization toggles).
//   2. Construct a Simulation -- it owns every engine component.
//   3. Create agents, attach behaviors, add them to the ResourceManager.
//   4. Simulate(n) and inspect the results.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/cell.h"
#include "core/resource_manager.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "math/random.h"
#include "models/common_behaviors.h"

int main() {
  bdm::Param param;
  param.num_threads = 4;
  param.num_numa_domains = 2;        // simulated NUMA topology
  param.agent_sort_frequency = 10;   // Morton re-sort every 10 iterations
  param.use_bdm_memory_manager = true;

  bdm::Simulation simulation("quickstart", param);
  auto* rm = simulation.GetResourceManager();

  // 1000 cells uniformly inside a ball of radius 100 um; each grows at a
  // constant volume rate and divides at 16 um diameter.
  bdm::Random random(42);
  for (int i = 0; i < 1000; ++i) {
    bdm::Real3 p;
    do {
      p = random.UniformPoint(-1, 1);
    } while (p.SquaredNorm() > 1);
    auto* cell = new bdm::Cell(p * 100.0, 8);
    cell->AddBehavior(new bdm::models::GrowDivide(4000, 16));
    rm->AddAgent(cell);
  }

  std::printf("quickstart: starting with %llu cells\n",
              static_cast<unsigned long long>(rm->GetNumAgents()));
  for (int epoch = 0; epoch < 5; ++epoch) {
    simulation.Simulate(20);
    std::printf("  after %3llu iterations: %llu cells\n",
                static_cast<unsigned long long>(
                    simulation.GetScheduler()->GetSimulatedIterations()),
                static_cast<unsigned long long>(rm->GetNumAgents()));
  }

  // The timing aggregator holds the per-operation breakdown (paper Fig. 5).
  std::printf("quickstart: runtime breakdown\n");
  for (const auto& [name, entry] : simulation.GetTiming()->raw()) {
    std::printf("  %-20s %8.3f ms (%llu calls)\n", name.c_str(),
                entry.seconds * 1e3,
                static_cast<unsigned long long>(entry.count));
  }
  return 0;
}
